package core

import (
	"testing"

	"virtualsync/internal/netlist"
)

func TestExtractWavePipe(t *testing.T) {
	c := wavePipe(t)
	lib := paperLib(t)
	r, err := Extract(c, lib, ExtractOptions{SelectFrac: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if r.Baseline.MinPeriod != 21 {
		t.Fatalf("baseline period = %g, want 21", r.Baseline.MinPeriod)
	}
	// F1 and F2 lie on the 21-delay path; F3 does not.
	removed := map[string]bool{}
	for _, id := range r.Removed {
		removed[r.Work.Node(id).Name] = true
	}
	if !removed["F1"] || !removed["F2"] || removed["F3"] {
		t.Fatalf("removed = %v, want F1+F2 only", removed)
	}
	// All five gates belong to the region.
	if len(r.Gates) != 5 {
		t.Fatalf("region gates = %d, want 5", len(r.Gates))
	}
	// Sources: the primary input (F1 is removed). Sinks: F3.
	if len(r.Sources) != 1 || r.Sources[0].IsFF {
		t.Fatalf("sources = %+v, want just the PI", r.Sources)
	}
	if len(r.Sinks) != 1 || !r.Sinks[0].IsFF {
		t.Fatalf("sinks = %+v, want just F3", r.Sinks)
	}
	// Edge anchors: g1's input crosses removed F1 (lambda 1), g4's first
	// input crosses removed F2 (lambda 1), all others lambda 0.
	lambdaByDst := map[string]int{}
	for _, e := range r.Edges {
		name := r.Work.Node(e.DstNode).Name
		lambdaByDst[name] += e.Lambda
	}
	if lambdaByDst["g1"] != 1 || lambdaByDst["g4"] != 1 || lambdaByDst["g5"] != 1 {
		t.Fatalf("lambda by dst = %v", lambdaByDst)
	}
	if lambdaByDst["g2"] != 0 || lambdaByDst["g3"] != 0 || lambdaByDst["F3"] != 0 {
		t.Fatalf("lambda by dst = %v", lambdaByDst)
	}
	st := r.Stats()
	if st.SelectedFFs != 2 || st.RegionGates != 5 || st.Edges != 7 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExtractLoop(t *testing.T) {
	c := loopCircuit(t)
	lib := paperLib(t)
	r, err := Extract(c, lib, ExtractOptions{SelectFrac: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	// Critical: F1->g1->F2 and F2->g1->F2, both 3+9+1=13.
	if r.Baseline.MinPeriod != 13 {
		t.Fatalf("baseline = %g, want 13", r.Baseline.MinPeriod)
	}
	removed := map[string]bool{}
	for _, id := range r.Removed {
		removed[r.Work.Node(id).Name] = true
	}
	if !removed["F1"] || !removed["F2"] {
		t.Fatalf("removed = %v, want F1 and F2", removed)
	}
	// The g1->g1 self edge through removed F2 must carry lambda 1.
	selfLambda := -1
	for _, e := range r.Edges {
		if e.From.Kind == RefGate && e.To.Kind == RefGate &&
			r.Gates[e.From.Idx] == r.Gates[e.To.Idx] {
			selfLambda = e.Lambda
		}
	}
	if selfLambda != 1 {
		t.Fatalf("self-loop lambda = %d, want 1", selfLambda)
	}
}

func TestExtractSelectFracOne(t *testing.T) {
	c := wavePipe(t)
	lib := paperLib(t)
	r, err := Extract(c, lib, ExtractOptions{SelectFrac: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	// Only the exact critical path's endpoints selected.
	if len(r.Removed) != 2 {
		t.Fatalf("removed = %d FFs, want 2", len(r.Removed))
	}
}

func TestExtractRejectsBadFrac(t *testing.T) {
	c := wavePipe(t)
	lib := paperLib(t)
	if _, err := Extract(c, lib, ExtractOptions{SelectFrac: 0}); err == nil {
		t.Fatal("SelectFrac 0 accepted")
	}
	if _, err := Extract(c, lib, ExtractOptions{SelectFrac: 1.5}); err == nil {
		t.Fatal("SelectFrac 1.5 accepted")
	}
}

func TestExtractRejectsLatchCircuit(t *testing.T) {
	lib := paperLib(t)
	c := netlist.New("lt")
	in := c.MustAdd("in", netlist.KindInput)
	c.MustAdd("l1", netlist.KindLatch, in.ID)
	if _, err := Extract(c, lib, ExtractOptions{SelectFrac: 0.95}); err == nil {
		t.Fatal("latch circuit accepted")
	}
}

func TestExtractFFChain(t *testing.T) {
	// A selected flip-flop inside an FF chain produces a source->sink edge
	// with lambda crossing it (gate-less wave path).
	lib := paperLib(t)
	c := netlist.New("chain")
	in := c.MustAdd("in", netlist.KindInput)
	f0 := c.MustAdd("F0", netlist.KindDFF, in.ID)
	g1 := c.MustAdd("g1", netlist.KindBuf, f0.ID)
	g1.Cell = "W9"
	f1 := c.MustAdd("F1", netlist.KindDFF, g1.ID)
	f2 := c.MustAdd("F2", netlist.KindDFF, f1.ID) // shift register tail
	c.MustAdd("out", netlist.KindOutput, f2.ID)
	r, err := Extract(c, lib, ExtractOptions{SelectFrac: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	// Critical: F0 -> g1 -> F1 (13). F0 and F1 are selected.
	removed := map[string]bool{}
	for _, id := range r.Removed {
		removed[r.Work.Node(id).Name] = true
	}
	if !removed["F0"] || !removed["F1"] || removed["F2"] {
		t.Fatalf("removed = %v", removed)
	}
	// F2 must be a sink fed through removed F1 (lambda 1, from g1).
	foundSink := false
	for _, e := range r.Edges {
		if e.To.Kind == RefSink && r.Work.Node(r.Sinks[e.To.Idx].Node).Name == "F2" {
			foundSink = true
			if e.Lambda != 1 {
				t.Fatalf("F2 sink lambda = %d, want 1", e.Lambda)
			}
		}
	}
	if !foundSink {
		t.Fatal("F2 not recorded as sink")
	}
}
