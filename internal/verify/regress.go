package verify

// Regression seed storage. A shrunk counterexample is persisted as a
// .bench netlist whose header comments carry the replay knobs, making
// every stored failure a permanent, human-readable seed test:
//
//	# vfuzz regression seed
//	# note: sim mismatch at f3, cycle 17
//	# knobs: cycles=24 warmup=10 stimseed=513 tfrac=0.050000 stepfrac=0.020000
//	INPUT(pi0)
//	...
//
// The bench parser ignores '#' comments, so the whole file parses as a
// circuit; LoadRegression additionally recovers the knobs line.

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"virtualsync/internal/gen"
	"virtualsync/internal/netlist"
)

// FormatRegression renders a fuzz case in the regression seed format.
func FormatRegression(d *gen.Decoded, note string) string {
	var b strings.Builder
	b.WriteString("# vfuzz regression seed\n")
	if note != "" {
		b.WriteString("# note: " + strings.ReplaceAll(note, "\n", " ") + "\n")
	}
	fmt.Fprintf(&b, "# knobs: cycles=%d warmup=%d stimseed=%d tfrac=%f stepfrac=%f\n",
		d.Cycles, d.Warmup, d.StimSeed, d.TFrac, d.StepFrac)
	b.WriteString(d.Circuit.String())
	return b.String()
}

// SaveRegression writes the case to dir under a content-derived name and
// returns the path. Saving the same case twice is idempotent.
func SaveRegression(dir string, d *gen.Decoded, note string) (string, error) {
	text := FormatRegression(d, note)
	h := fnv.New32a()
	// Hash everything but the free-form note so renaming a note does not
	// duplicate the seed.
	fmt.Fprintf(h, "cycles=%d warmup=%d stimseed=%d tfrac=%f stepfrac=%f\n%s",
		d.Cycles, d.Warmup, d.StimSeed, d.TFrac, d.StepFrac, d.Circuit.String())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("reg_%08x.bench", h.Sum32()))
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Seed is a loaded regression file.
type Seed struct {
	Case *gen.Decoded
	Note string
	Path string
}

// LoadRegression parses a regression seed file back into a replayable
// case. Files without a knobs line get conservative defaults.
func LoadRegression(path string) (*Seed, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := ParseRegression(string(raw), filepath.Base(path))
	if err != nil {
		return nil, err
	}
	s.Path = path
	return s, nil
}

// ParseRegression parses the regression seed format from a string.
func ParseRegression(text, name string) (*Seed, error) {
	d := &gen.Decoded{Cycles: 32, Warmup: 10, StimSeed: 1, TFrac: 0, StepFrac: 0.02}
	s := &Seed{Case: d}
	sawKnobs := false
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "# note:") {
			s.Note = strings.TrimSpace(strings.TrimPrefix(line, "# note:"))
			continue
		}
		if !strings.HasPrefix(line, "# knobs:") || sawKnobs {
			continue
		}
		_, err := fmt.Sscanf(strings.TrimPrefix(line, "# knobs:"),
			" cycles=%d warmup=%d stimseed=%d tfrac=%f stepfrac=%f",
			&d.Cycles, &d.Warmup, &d.StimSeed, &d.TFrac, &d.StepFrac)
		if err != nil {
			return nil, fmt.Errorf("verify: %s: bad knobs line: %v", name, err)
		}
		sawKnobs = true
	}
	c, err := netlist.ParseString(text, strings.TrimSuffix(name, ".bench"))
	if err != nil {
		return nil, fmt.Errorf("verify: %s: %v", name, err)
	}
	d.Circuit = c
	return s, nil
}

// RegressionFiles lists the .bench seeds under dir in sorted order. A
// missing directory is an empty corpus, not an error.
func RegressionFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".bench") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}
