package verify

import (
	"math/rand"
	"testing"

	"virtualsync/internal/gen"
)

// TestFastPathEngagesAndAgrees streams random generated cases through
// the checker twice — once with the bit-parallel fast path, once with
// the event-engine oracle forced — and demands identical verdicts. It
// also demands the fast path actually engages on a healthy fraction of
// passing cases: the gate conditions (exact original, supported
// optimized circuit, clean calibration) must not silently rot into
// "always fall back".
func TestFastPathEngagesAndAgrees(t *testing.T) {
	if testing.Short() {
		t.Skip("case stream is not -short")
	}
	fast := NewChecker()
	slow := NewChecker()
	slow.DisableBitSim = true
	rng := rand.New(rand.NewSource(77))
	cases, passes, engaged, full := 0, 0, 0, 0
	for i := 0; i < 40; i++ {
		data := make([]byte, 12+rng.Intn(100))
		rng.Read(data)
		d, err := gen.DecodeCase(data)
		if err != nil {
			continue
		}
		cases++
		rf := fast.Check(d)
		rs := slow.Check(d)
		if rf.Outcome != rs.Outcome {
			t.Fatalf("case %d: fast path verdict %v, event oracle %v", i, rf, rs)
		}
		if rs.FastPath {
			t.Fatalf("case %d: DisableBitSim checker claims fast path", i)
		}
		if rf.Outcome == Pass && rf.Stage == "" {
			passes++
			if rf.FastPath {
				engaged++
				// Lanes is 64 when every lane agreed outright, and
				// smaller when some lanes were BitSim artifacts that
				// needed (and survived) event-engine confirmation.
				if rf.Lanes < 1 || rf.Lanes > 64 {
					t.Fatalf("case %d: fast-path pass credited %d lanes", i, rf.Lanes)
				}
				if rf.Lanes == 64 {
					full++
				}
			}
			if rs.Lanes != 1 {
				t.Fatalf("case %d: event oracle credited %d lanes, want 1", i, rs.Lanes)
			}
		}
	}
	if cases == 0 || passes == 0 {
		t.Fatalf("case stream produced no verified passes (%d cases)", cases)
	}
	if engaged*2 < passes {
		t.Fatalf("fast path engaged on only %d of %d passing cases", engaged, passes)
	}
	if full == 0 {
		t.Fatalf("no fast-path pass ever cleared all 64 lanes (%d engaged)", engaged)
	}
	t.Logf("%d cases, %d passes, fast path on %d (%d full-width)", cases, passes, engaged, full)
}
