package sim

import (
	"testing"

	"virtualsync/internal/netlist"
)

// packedRandom builds lanes scalar stimulus sets with distinct seeds and
// packs them, returning both forms.
func packedRandom(t *testing.T, c *netlist.Circuit, cycles, lanes int) ([][][]bool, [][]uint64) {
	t.Helper()
	scalar := make([][][]bool, lanes)
	for l := range scalar {
		scalar[l] = RandomStimulus(c, cycles, int64(1000+l))
	}
	words, err := PackStimulus(scalar)
	if err != nil {
		t.Fatal(err)
	}
	return scalar, words
}

// compareAllLanes runs every lane's scalar stimulus through the event
// engine and checks the corresponding BitTrace lane cycle for cycle.
func compareAllLanes(t *testing.T, c *netlist.Circuit, T float64, cycles, warmup int, scalar [][][]bool, bt *BitTrace) {
	t.Helper()
	lib := lib31(t)
	for l := range scalar {
		s, err := New(c, lib, Options{T: T, Cycles: cycles})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := s.Run(scalar[l])
		if err != nil {
			t.Fatal(err)
		}
		lane, err := bt.Lane(l)
		if err != nil {
			t.Fatal(err)
		}
		if mm := CompareTraces(ref, lane, warmup); len(mm) != 0 {
			t.Fatalf("lane %d diverges from event engine: %v", l, mm[0])
		}
	}
}

func TestBitSimMatchesEventPipeline(t *testing.T) {
	c := pipeline(t)
	if !BitSimExact(c) {
		t.Fatal("phase-0 DFF pipeline should be BitSimExact")
	}
	const cycles = 16
	scalar, words := packedRandom(t, c, cycles, 64)
	bs, err := NewBit(c, BitOptions{Cycles: cycles, Lanes: 64})
	if err != nil {
		t.Fatal(err)
	}
	bt, err := bs.Run(words)
	if err != nil {
		t.Fatal(err)
	}
	compareAllLanes(t, c, 10, cycles, 0, scalar, bt)
}

func TestBitSimXorFeedback(t *testing.T) {
	// Sequential feedback through a phase-0 DFF: running parity.
	c := netlist.New("par")
	in := c.MustAdd("in", netlist.KindInput)
	f1 := c.MustAdd("F1", netlist.KindDFF, in.ID)
	x := c.MustAdd("x", netlist.KindXor, f1.ID, f1.ID)
	f2 := c.MustAdd("F2", netlist.KindDFF, x.ID)
	x.Fanins[1] = f2.ID
	c.MustAdd("out", netlist.KindOutput, f2.ID)

	const cycles = 20
	scalar, words := packedRandom(t, c, cycles, 64)
	bs, err := NewBit(c, BitOptions{Cycles: cycles, Lanes: 64})
	if err != nil {
		t.Fatal(err)
	}
	bt, err := bs.Run(words)
	if err != nil {
		t.Fatal(err)
	}
	compareAllLanes(t, c, 10, cycles, 0, scalar, bt)
}

// latchMix is a circuit exercising non-zero clock phases: a phase-0.5
// flip-flop, a mid-cycle latch, and a latch whose transparency window
// wraps into the next cycle (phase 0.6 + duty 0.5 opens at 1.1).
func latchMix(t testing.TB) *netlist.Circuit {
	t.Helper()
	c := netlist.New("lm")
	in := c.MustAdd("in", netlist.KindInput)
	f0 := c.MustAdd("F0", netlist.KindDFF, in.ID)
	g1 := c.MustAdd("g1", netlist.KindNot, f0.ID)
	l1 := c.MustAdd("L1", netlist.KindLatch, g1.ID)
	l1.Phase = 0.25
	g2 := c.MustAdd("g2", netlist.KindBuf, l1.ID)
	f1 := c.MustAdd("F1", netlist.KindDFF, g2.ID)
	f1.Phase = 0.5
	g3 := c.MustAdd("g3", netlist.KindNot, f1.ID)
	l2 := c.MustAdd("L2", netlist.KindLatch, g3.ID)
	l2.Phase = 0.6
	c.MustAdd("out", netlist.KindOutput, l2.ID)
	return c
}

func TestBitSimNonZeroLatchPhases(t *testing.T) {
	c := latchMix(t)
	if BitSimExact(c) {
		t.Fatal("latch circuit must not claim exactness")
	}
	if !SupportsBitSim(c) {
		t.Fatal("latch circuit should still be supported")
	}
	const cycles = 16
	scalar, words := packedRandom(t, c, cycles, 64)
	bs, err := NewBit(c, BitOptions{Duty: 0.5, Cycles: cycles, Lanes: 64})
	if err != nil {
		t.Fatal(err)
	}
	bt, err := bs.Run(words)
	if err != nil {
		t.Fatal(err)
	}
	// At a period far above every gate delay, instants are separated by
	// much more than any propagation path, so zero-delay two-phase
	// semantics coincide with the event engine even through latches.
	compareAllLanes(t, c, 10000, cycles, 1, scalar, bt)
}

func TestBitSimReusedAcrossRuns(t *testing.T) {
	c := latchMix(t)
	const cycles = 12
	scalarA, wordsA := packedRandom(t, c, cycles, 64)
	bs, err := NewBit(c, BitOptions{Cycles: cycles, Lanes: 64})
	if err != nil {
		t.Fatal(err)
	}
	// First run on different stimulus, then re-run on A: the reused
	// buffers must not leak state between runs.
	_, wordsB := packedRandom(t, c, cycles, 64)
	for cyc := range wordsB {
		for i := range wordsB[cyc] {
			wordsB[cyc][i] = ^wordsB[cyc][i]
		}
	}
	if _, err := bs.Run(wordsB); err != nil {
		t.Fatal(err)
	}
	bt, err := bs.Run(wordsA)
	if err != nil {
		t.Fatal(err)
	}
	compareAllLanes(t, c, 10000, cycles, 1, scalarA, bt)
}

func TestBitSimLatchFeedbackDoesNotSettle(t *testing.T) {
	// A latch fed by its own inverted output oscillates while open;
	// BitSim must report the non-settling error instead of looping.
	c := netlist.New("osc")
	in := c.MustAdd("in", netlist.KindInput)
	l := c.MustAdd("L", netlist.KindLatch, in.ID)
	g := c.MustAdd("g", netlist.KindNot, l.ID)
	l.Fanins[0] = g.ID
	c.MustAdd("out", netlist.KindOutput, g.ID)

	bs, err := NewBit(c, BitOptions{Cycles: 4, Lanes: 1})
	if err != nil {
		t.Fatal(err)
	}
	words := make([][]uint64, 4)
	for i := range words {
		words[i] = []uint64{0}
	}
	if _, err := bs.Run(words); err == nil {
		t.Fatal("oscillating latch loop should fail to settle")
	}
}

func TestEventSimulatorReusedAcrossRuns(t *testing.T) {
	c := latchMix(t)
	lib := lib31(t)
	const cycles = 12
	s, err := New(c, lib, Options{T: 10000, Cycles: cycles})
	if err != nil {
		t.Fatal(err)
	}
	stimA := RandomStimulus(c, cycles, 5)
	stimB := RandomStimulus(c, cycles, 6)
	trA, err := s.Run(stimA)
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot A's trace before the buffers are reused.
	snap := make(Trace, len(trA))
	for name, row := range trA {
		snap[name] = append([]bool(nil), row...)
	}
	if _, err := s.Run(stimB); err != nil {
		t.Fatal(err)
	}
	trA2, err := s.Run(stimA)
	if err != nil {
		t.Fatal(err)
	}
	if mm := CompareTraces(snap, trA2, 0); len(mm) != 0 {
		t.Fatalf("reused simulator diverges on identical stimulus: %v", mm[0])
	}
}

func TestEventCoreAllocFree(t *testing.T) {
	c := latchMix(t)
	lib := lib31(t)
	const cycles = 16
	s, err := New(c, lib, Options{T: 10000, Cycles: cycles})
	if err != nil {
		t.Fatal(err)
	}
	stim := RandomStimulus(c, cycles, 9)
	if _, err := s.Run(stim); err != nil { // warm the buffers
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := s.Run(stim); err != nil {
			t.Error(err)
		}
	})
	if avg > 0.5 {
		t.Fatalf("steady-state event-engine Run allocates %.1f objects, want 0", avg)
	}
}

func TestBitSimAllocFree(t *testing.T) {
	c := latchMix(t)
	const cycles = 16
	bs, err := NewBit(c, BitOptions{Cycles: cycles, Lanes: 64})
	if err != nil {
		t.Fatal(err)
	}
	_, words := packedRandom(t, c, cycles, 64)
	if _, err := bs.Run(words); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := bs.Run(words); err != nil {
			t.Error(err)
		}
	})
	if avg > 0.5 {
		t.Fatalf("steady-state BitSim Run allocates %.1f objects, want 0", avg)
	}
}
