package expt

import (
	"context"
	"fmt"
	"math"
	"strings"

	"virtualsync/internal/core"
	"virtualsync/internal/gen"
	"virtualsync/internal/sizing"
	"virtualsync/internal/variation"

	"virtualsync/internal/retime"
)

// YieldResult is one circuit's Monte Carlo timing-yield comparison: the
// FF-synchronized baseline against the VirtualSync-optimized circuit
// over a shared period sweep.
type YieldResult struct {
	Name string
	Cmp  *variation.Comparison
}

// RunYield prepares each named benchmark exactly like RunCircuit
// (sizing, retiming, sizing), runs the VirtualSync period search, and
// then measures both circuits' timing yield with the Monte Carlo engine
// in internal/variation. An empty names list runs the paper's whole
// suite.
func RunYield(ctx context.Context, names []string, cfg Config, mc variation.Config) ([]*YieldResult, error) {
	specs := gen.PaperSuite()
	if len(names) > 0 {
		var sel []gen.Spec
		for _, n := range names {
			s, ok := gen.SpecByName(n)
			if !ok {
				return nil, fmt.Errorf("expt: unknown benchmark %q", n)
			}
			sel = append(sel, s)
		}
		specs = sel
	}
	out := make([]*YieldResult, 0, len(specs))
	for _, spec := range specs {
		c, err := gen.Generate(spec)
		if err != nil {
			return nil, err
		}
		if _, err := sizing.Size(c, cfg.Lib); err != nil {
			return nil, fmt.Errorf("%s: sizing: %v", spec.Name, err)
		}
		base, _, err := retime.Retime(c, cfg.Lib)
		if err != nil {
			return nil, fmt.Errorf("%s: retiming: %v", spec.Name, err)
		}
		if _, err := sizing.Size(base, cfg.Lib); err != nil {
			return nil, fmt.Errorf("%s: post-retiming sizing: %v", spec.Name, err)
		}
		res, err := core.OptimizeCtx(ctx, base, cfg.Lib, cfg.Opts, cfg.StepFrac)
		if err != nil {
			return nil, fmt.Errorf("%s: virtualsync: %v", spec.Name, err)
		}
		cmp, err := variation.Compare(ctx, base, res, cfg.Lib, mc)
		if err != nil {
			return nil, fmt.Errorf("%s: monte carlo: %v", spec.Name, err)
		}
		out = append(out, &YieldResult{Name: spec.Name, Cmp: cmp})
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, "%-12s yield @Topt %.2f: base %.3f vsync %.3f  (@Tbase %.2f: base %.3f)\n",
				spec.Name, cmp.TOpt, cmp.Base.YieldAt(cmp.TOpt), cmp.Opt.YieldAt(cmp.TOpt),
				cmp.TBase, cmp.Base.YieldAt(cmp.TBase))
		}
	}
	return out, nil
}

// FormatYield renders the yield-vs-period curves as a text table, one
// block per circuit. Output is deterministic for a fixed seed: rows are
// in ascending period order and fail modes are count-sorted with
// alphabetical tie-breaks.
func FormatYield(rows []*YieldResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Timing yield under process variation (Monte Carlo)\n")
	for _, r := range rows {
		cmp := r.Cmp
		fmt.Fprintf(&b, "\n%s  (Topt %.2f, Tbase %.2f, %d samples, seed %d)\n",
			r.Name, cmp.TOpt, cmp.TBase, cmp.Opt.Samples, cmp.Opt.Seed)
		fmt.Fprintf(&b, "  %10s  %9s  %9s  %s\n", "period", "yield(ff)", "yield(vs)", "first-fail(vs)")
		for i, T := range cmp.Opt.Periods {
			mark := " "
			switch {
			case close2(T, cmp.TOpt):
				mark = "*"
			case close2(T, cmp.TBase):
				mark = "+"
			}
			fmt.Fprintf(&b, " %s%10.3f  %9.3f  %9.3f  %s\n",
				mark, T, cmp.Base.Yield(i), cmp.Opt.Yield(i), failSummary(cmp.Opt, i))
		}
	}
	fmt.Fprintf(&b, "\n(* = optimized period, + = guard-banded baseline period)\n")
	return b.String()
}

// failSummary compacts one period's first-fail histogram into
// "check(count) check(count) ...", capped at three modes.
func failSummary(res *variation.Result, i int) string {
	modes := res.FailModes(i)
	if len(modes) == 0 {
		return "-"
	}
	if len(modes) > 3 {
		modes = modes[:3]
	}
	parts := make([]string, len(modes))
	for j, m := range modes {
		parts[j] = fmt.Sprintf("%s(%d)", m, res.FirstFail[i][m])
	}
	return strings.Join(parts, " ")
}

func close2(a, b float64) bool { return math.Abs(a-b) < 1e-9 }
