package core

import (
	"fmt"

	"virtualsync/internal/netlist"
)

// Apply materializes the realized plan as a netlist: selected flip-flops
// are removed, gates take their discretized drives, and the planned buffer
// chains and sequential delay units are inserted on their edges. The
// result is a new circuit; the region's working copy is untouched.
func (p *Plan) Apply() (*netlist.Circuit, error) {
	r := p.R
	out := r.Work.Clone()
	out.Name = r.Work.Name + "_vsync"

	// 1. Discretized gate drives.
	for gi, gid := range r.Gates {
		out.Node(gid).Drive = p.GateDrive[gi]
	}

	// 2. Bypass and remove the selected flip-flops. Bypassing first in
	// any order collapses chains; removal follows once nothing reads them.
	for _, id := range r.Removed {
		if err := out.Bypass(id); err != nil {
			return nil, fmt.Errorf("core: apply: %v", err)
		}
	}
	for _, id := range r.Removed {
		if err := out.Remove(id); err != nil {
			return nil, fmt.Errorf("core: apply: %v", err)
		}
	}

	// 3. Insert per-edge hardware: buffer chain first (nearest the
	// driver), then the sequential delay unit (nearest the consumer),
	// matching the model's signal order driver -> buffers -> unit -> pin.
	for ei, e := range r.Edges {
		dst := out.Node(e.DstNode)
		if dst == nil {
			return nil, fmt.Errorf("core: apply: edge %d consumer missing", ei)
		}
		if e.DstPin >= len(dst.Fanins) {
			return nil, fmt.Errorf("core: apply: edge %d pin %d out of range", ei, e.DstPin)
		}
		if got := dst.Fanins[e.DstPin]; got != e.SrcNode {
			return nil, fmt.Errorf("core: apply: edge %d expected driver %d at %q pin %d, found %d",
				ei, e.SrcNode, dst.Name, e.DstPin, got)
		}
		// Insert the unit first; buffers then land between the driver
		// and the unit, realizing driver -> buffers -> unit -> pin.
		target, pin := dst.ID, e.DstPin
		switch p.Unit[ei].Kind {
		case UnitFF:
			ff, err := out.InsertAtPin(fmt.Sprintf("vs_ff_%d", ei), netlist.KindDFF, dst.ID, e.DstPin)
			if err != nil {
				return nil, err
			}
			ff.Phase = p.Unit[ei].PhaseFrac
			target, pin = ff.ID, 0
		case UnitLatch:
			lt, err := out.InsertAtPin(fmt.Sprintf("vs_lt_%d", ei), netlist.KindLatch, dst.ID, e.DstPin)
			if err != nil {
				return nil, err
			}
			lt.Phase = p.Unit[ei].PhaseFrac
			target, pin = lt.ID, 0
		}
		for bi, drive := range p.Chain[ei] {
			b, err := out.InsertAtPin(fmt.Sprintf("vs_buf_%d_%d", ei, bi), netlist.KindBuf, target, pin)
			if err != nil {
				return nil, err
			}
			b.Drive = drive
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("core: apply: optimized circuit invalid: %v", err)
	}
	return out, nil
}
